// Trilemma demo: every classic locking scheme wins at most two of
// {locking security, obfuscation safety, efficiency}; ObfusLock wins all
// three. Each scheme locks the same circuit and faces the SAT attack, the
// SPS+removal structural attack, and the SPI synthesis attack; the table
// also reports key length and area overhead.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"obfuslock"
	"obfuslock/internal/attacks"
	"obfuslock/internal/cec"
	"obfuslock/internal/exec"
	"obfuslock/internal/locking"
	"obfuslock/internal/netlistgen"
	"obfuslock/internal/techmap"
)

func main() {
	c := netlistgen.AdderCmp(12) // 25 inputs, adder/comparator datapath
	fmt.Printf("circuit: %s\n\n", c.Stats())
	origPPA := techmap.Analyze(c, 8, 1)

	// The baselines all route through the facade's scheme registry; only
	// the per-scheme parameters differ.
	type scheme struct {
		name string
		lock func() (*locking.Locked, error)
	}
	baseline := func(reg, display string, opt obfuslock.SchemeOptions) scheme {
		return scheme{display, func() (*locking.Locked, error) {
			return obfuslock.LockWith(context.Background(), reg, c, opt)
		}}
	}
	schemes := []scheme{
		baseline("rll", "RLL", obfuslock.SchemeOptions{KeyBits: 16, Seed: 1}),
		baseline("sarlock", "SARLock", obfuslock.SchemeOptions{ProtWidth: 10, Seed: 1}),
		baseline("antisat", "Anti-SAT", obfuslock.SchemeOptions{ProtWidth: 8, Seed: 1}),
		baseline("ttlock", "TTLock", obfuslock.SchemeOptions{ProtWidth: 10, Seed: 1}),
		baseline("sfll-hd", "SFLL-HD", obfuslock.SchemeOptions{ProtWidth: 10, HammingDistance: 1, Seed: 1}),
		{"ObfusLock", func() (*locking.Locked, error) {
			opt := obfuslock.DefaultOptions()
			opt.TargetSkewBits = 10
			opt.Seed = 5
			opt.AllowDirect = false
			res, err := obfuslock.Lock(c, opt)
			if err != nil {
				return nil, err
			}
			return res.Locked, nil
		}},
	}

	fmt.Println("scheme      keys  SAT-attack      SPS+removal   SPI          area-ovh")
	fmt.Println("--------------------------------------------------------------------")
	for _, s := range schemes {
		l, err := s.lock()
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		if err := l.Verify(c); err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}

		// SAT attack with a budget far below 2^10.
		aopt := attacks.DefaultIOOptions()
		aopt.MaxIterations = 80
		aopt.Timeout = time.Minute
		r := attacks.SATAttack(context.Background(), l, locking.NewOracle(c), aopt)
		satCell := "resists"
		if r.Key != nil {
			if ok, _ := l.VerifyKey(c, r.Key); ok {
				satCell = fmt.Sprintf("broken@%d", r.Iterations)
			}
		}

		// Structural: SPS shortlist + removal.
		copt := cec.DefaultOptions()
		copt.Budget = exec.WithConflicts(50000)
		sps := attacks.SPS(l, 128, 1, 8)
		rm := attacks.Removal(context.Background(), l, c, sps.Candidates, copt)
		structCell := "resists"
		if rm.Success {
			structCell = "broken"
		}

		// SPI synthesis attack.
		spi := attacks.SPI(l, 6)
		spiCell := "resists"
		if ok, _ := l.VerifyKey(c, spi.Key); ok {
			spiCell = "broken"
		}

		ov := techmap.Compare(origPPA, techmap.Analyze(l.Enc, 8, 1))
		fmt.Printf("%-11s %4d  %-14s  %-12s  %-11s  %5.1f%%\n",
			s.name, l.KeyBits, satCell, structCell, spiCell, ov.AreaPct)
	}
	fmt.Println("\n(RLL and low-distance SFLL-HD fall to the SAT attack; SARLock and")
	fmt.Println(" Anti-SAT expose their flip node to structural removal; TTLock and")
	fmt.Println(" SFLL-HD leak their point function to SPI — and Anti-SAT's huge")
	fmt.Println(" correct-key set means even a default key unlocks it. ObfusLock")
	fmt.Println(" resists every column: the locking trilemma resolved.)")
}
