package attacks

import (
	"time"

	"obfuslock/internal/aig"
	"obfuslock/internal/locking"
	"obfuslock/internal/rewrite"
)

// SPIResult reports the synthesis/prime-implicant attack.
type SPIResult struct {
	// Key is the inferred key (always KeyBits long; bits default false).
	Key []bool
	// Confident marks bits the rules actually fired on.
	Confident []bool
	// XORRuleHits / PointRuleHits count rule applications.
	XORRuleHits   int
	PointRuleHits int
	Runtime       time.Duration
}

// SPI runs an SPI-style structural synthesis attack (after Han et al.,
// "Does logic locking work with EDA tools?"). Two inference rules cover
// the classic schemes:
//
//  1. XOR-transparency: a key bit feeding a key-XOR gate is inferred as the
//     value that turns the gate into a buffer of its functional fanin —
//     this recovers RLL/EPIC keys from an unsynthesized or lightly
//     synthesized netlist.
//  2. Point-function polarity: a wide AND tree over primary-input literals
//     (no key dependence) is the hard-coded comparator of a stripped point
//     function (TTLock-style); its literal polarities spell the protected
//     pattern, which equals the key.
//
// ObfusLock defeats both: its key XORs are composed behind randomized
// bubbles (transparency infers the wrong polarity) and its locking circuit
// is built from pre-existing circuit nodes rather than a fresh comparator.
func SPI(l *locking.Locked, minPointWidth int) SPIResult {
	start := time.Now()
	g := l.Enc
	res := SPIResult{
		Key:       make([]bool, l.KeyBits),
		Confident: make([]bool, l.KeyBits),
	}
	keyIndex := make(map[uint32]int, l.KeyBits)
	for i := 0; i < l.KeyBits; i++ {
		keyIndex[g.InputVar(l.NumInputs+i)] = i
	}

	// Rule 2 runs first: point-function polarity is direct evidence of the
	// hard-coded comparator pattern, which for TTLock-style schemes equals
	// the key. Find wide AND trees whose leaves are primary-input literals
	// only; the polarity vector maps onto key bits by input position.
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) != aig.OpAnd {
			continue
		}
		leaves := flattenAnd(g, aig.MkLit(v, false), 2*l.KeyBits+4)
		if len(leaves) < minPointWidth {
			continue
		}
		polarity := make(map[int]bool) // original-input position -> bit
		pure := true
		for _, lf := range leaves {
			if g.Op(lf.Var()) != aig.OpInput {
				pure = false
				break
			}
			if _, isKey := keyIndex[lf.Var()]; isKey {
				pure = false // key-dependent: restore unit, not the strip
				break
			}
			pos, ok := g.InputIndex(lf.Var())
			if !ok || pos >= l.KeyBits {
				// Outside the protected prefix convention.
				pure = false
				break
			}
			polarity[pos] = !lf.IsCompl()
		}
		if !pure || len(polarity) < minPointWidth {
			continue
		}
		for pos, bit := range polarity {
			if !res.Confident[pos] {
				res.Confident[pos] = true
				res.Key[pos] = bit
			}
		}
		res.PointRuleHits++
	}

	// Rule 1: XOR transparency. A key-XOR inserted by RLL/EPIC pairs the
	// key with an internal functional signal; the transparent key value is
	// the consistent fanout complement parity. XORs pairing a key with a
	// primary input are comparator/permutation inputs, where transparency
	// reasoning is unsound, so they are skipped.
	fanoutPhase := xorFanoutPhases(g)
	for v := uint32(1); v <= g.MaxVar(); v++ {
		if g.Op(v) != aig.OpXor {
			continue
		}
		fan := g.Fanins(v)
		ki := -1
		internalOther := false
		for fi, f := range fan[:2] {
			if idx, ok := keyIndex[f.Var()]; ok {
				if ki >= 0 {
					ki = -2 // two key fanins: not a simple locking gate
					break
				}
				ki = idx
				other := fan[1-fi]
				internalOther = g.Op(other.Var()) != aig.OpInput
			}
		}
		if ki < 0 || !internalOther {
			continue
		}
		phase, ok := fanoutPhase[v]
		if !ok {
			continue // mixed-phase usage: no confident inference
		}
		if !res.Confident[ki] {
			res.Confident[ki] = true
			res.Key[ki] = phase
			res.XORRuleHits++
		}
	}
	res.Runtime = time.Since(start)
	return res
}

// xorFanoutPhases returns, for each XOR variable used with a consistent
// phase by all fanouts (including outputs), that phase (true = always used
// complemented).
func xorFanoutPhases(g *aig.AIG) map[uint32]bool {
	phase := make(map[uint32]int8) // 0 unseen, 1 pos, 2 neg, 3 mixed
	note := func(f aig.Lit) {
		if g.Op(f.Var()) != aig.OpXor {
			return
		}
		bit := int8(1)
		if f.IsCompl() {
			bit = 2
		}
		phase[f.Var()] |= bit
	}
	for v := uint32(1); v <= g.MaxVar(); v++ {
		for _, f := range g.Fanins(v) {
			note(f)
		}
	}
	for _, po := range g.Outputs() {
		note(po)
	}
	out := make(map[uint32]bool)
	for v, p := range phase {
		switch p {
		case 1:
			out[v] = false
		case 2:
			out[v] = true
		}
	}
	return out
}

// flattenAnd expands an AND tree through non-complemented edges.
func flattenAnd(g *aig.AIG, root aig.Lit, limit int) []aig.Lit {
	var out []aig.Lit
	var walk func(l aig.Lit)
	walk = func(l aig.Lit) {
		if len(out) > limit {
			return
		}
		if !l.IsCompl() && g.Op(l.Var()) == aig.OpAnd {
			fan := g.Fanins(l.Var())
			walk(fan[0])
			walk(fan[1])
			return
		}
		out = append(out, l)
	}
	walk(root)
	return out
}

// ResynthesizeThenSPI first runs size-driven functional rewriting on the
// locked netlist (the attacker's "run it through EDA tools" step) and then
// applies SPI. Schemes whose locking structure survives synthesis leak.
func ResynthesizeThenSPI(l *locking.Locked, minPointWidth int) SPIResult {
	rw := rewrite.FunctionalRewrite(l.Enc, rewrite.DefaultOptions())
	l2 := &locking.Locked{
		Scheme: l.Scheme, Enc: rw,
		NumInputs: l.NumInputs, KeyBits: l.KeyBits, Key: l.Key,
	}
	return SPI(l2, minPointWidth)
}
