// Package sample draws (approximately uniform) satisfying assignments —
// witnesses — of a condition literal in a circuit. Witness sampling powers
// the conditional-probability estimates inside Boolean multi-level
// splitting (the paper's skewness estimator, after Chakraborty et al.'s
// uniform witness generation).
//
// Two samplers are provided:
//
//   - CubeSampler pins a random subset of inputs to random values and asks a
//     SAT solver for a completion; it is fast and spreads samples well when
//     the witness set is not too small.
//   - XorSampler partitions the witness space into cells with random XOR
//     (parity) constraints over the inputs and enumerates a small random
//     cell, giving near-uniform samples at higher cost (UniGen-style).
package sample

import (
	"context"
	"fmt"
	"math/rand"

	"obfuslock/internal/aig"
	"obfuslock/internal/cnf"
	"obfuslock/internal/exec"
	"obfuslock/internal/memo"
	"obfuslock/internal/obs"
	"obfuslock/internal/sat"
	"obfuslock/internal/simp"
)

// Sampler draws input patterns on which cond evaluates true.
type Sampler interface {
	// Sample returns up to n witnesses; fewer (possibly zero) when the
	// witness set is small or the budget runs out.
	Sample(n int) [][]bool
}

// prepare builds a solver asserting cond over the inputs of g and returns
// the solver together with the input literals. The inputs are frozen by
// the encoder (the samplers assume, block and read them), so the
// requested preprocessing may eliminate anything internal.
func prepare(ctx context.Context, g *aig.AIG, cond aig.Lit, budget exec.Budget, so simp.Options, tr *obs.Tracer) (*sat.Solver, []sat.Lit) {
	s := sat.New()
	e := cnf.NewEncoder(g, s)
	ins := make([]sat.Lit, g.NumInputs())
	for i := range ins {
		ins[i] = e.InputLit(i)
	}
	root := e.Encode(cond)
	s.AddClause(root[0])
	s.SetBudget(budget.ConflictCap())
	s.SetContext(ctx)
	simp.Apply(s, so, tr)
	return s, ins
}

// CubeSampler samples witnesses by pinning random input cubes.
type CubeSampler struct {
	g    *aig.AIG
	cond aig.Lit
	rng  *rand.Rand
	// PinFraction is the initial fraction of inputs pinned per attempt.
	PinFraction float64
	// Attempts bounds SAT calls per requested sample.
	Attempts int
	// Budget bounds each solver call (zero value: unlimited).
	Budget exec.Budget
	// Ctx, when non-nil, cancels in-flight solves; Sample then returns
	// the witnesses drawn so far.
	Ctx context.Context
	// Simp controls CNF preprocessing of each Sample call's solver
	// (zero value: enabled; simp.Off() disables).
	Simp simp.Options
	// Trace receives one sample.cube event per Sample call. Nil disables.
	Trace *obs.Tracer
}

// NewCubeSampler returns a sampler of witnesses of cond in g.
func NewCubeSampler(g *aig.AIG, cond aig.Lit, seed int64) *CubeSampler {
	return &CubeSampler{
		g:           g,
		cond:        cond,
		rng:         rand.New(rand.NewSource(seed)),
		PinFraction: 0.5,
		Attempts:    8,
		Budget:      exec.WithConflicts(200000),
	}
}

// Sample implements Sampler.
func (cs *CubeSampler) Sample(n int) [][]bool {
	out := cs.sample(n)
	if cs.Trace.Enabled() {
		cs.Trace.Event("sample.cube",
			obs.Int("requested", int64(n)), obs.Int("got", int64(len(out))))
	}
	return out
}

func (cs *CubeSampler) sample(n int) [][]bool {
	s, ins := prepare(cs.Ctx, cs.g, cs.cond, cs.Budget, cs.Simp, cs.Trace)
	s.SetRandomPolarity(cs.rng.Int63())
	nin := len(ins)
	var out [][]bool
	pin := cs.PinFraction
	for len(out) < n {
		got := false
		for attempt := 0; attempt < cs.Attempts; attempt++ {
			k := int(pin * float64(nin))
			perm := cs.rng.Perm(nin)[:k]
			assumps := make([]sat.Lit, 0, k)
			for _, i := range perm {
				l := ins[i]
				if cs.rng.Intn(2) == 0 {
					l = l.Not()
				}
				assumps = append(assumps, l)
			}
			switch s.Solve(assumps...) {
			case sat.Sat:
				w := make([]bool, nin)
				for i, l := range ins {
					w[i] = s.ModelValue(l)
				}
				out = append(out, w)
				got = true
			case sat.Unsat:
				// Cube too tight for this witness set; loosen.
				pin *= 0.7
			default:
				return out // budget exhausted
			}
			if got {
				break
			}
			if pin*float64(nin) < 1 {
				// Fully free and still failing means cond is UNSAT.
				if s.Solve() != sat.Sat {
					return out
				}
				w := make([]bool, nin)
				for i, l := range ins {
					w[i] = s.ModelValue(l)
				}
				out = append(out, w)
				got = true
				break
			}
		}
		if !got {
			break
		}
	}
	return out
}

// XorSampler samples witnesses with random parity cells.
type XorSampler struct {
	g    *aig.AIG
	cond aig.Lit
	rng  *rand.Rand
	// CellTarget is the desired number of witnesses per random cell.
	CellTarget int
	// Budget bounds each solver (zero value: unlimited).
	Budget exec.Budget
	// Ctx, when non-nil, cancels in-flight solves; Sample then returns
	// the witnesses drawn so far.
	Ctx context.Context
	// Simp controls CNF preprocessing of each cell's solver (zero
	// value: enabled; simp.Off() disables).
	Simp simp.Options
	// Trace receives one sample.cell event per enumerated XOR cell. Nil
	// disables.
	Trace *obs.Tracer
}

// NewXorSampler returns a UniGen-style sampler of witnesses of cond in g.
func NewXorSampler(g *aig.AIG, cond aig.Lit, seed int64) *XorSampler {
	return &XorSampler{
		g:          g,
		cond:       cond,
		rng:        rand.New(rand.NewSource(seed)),
		CellTarget: 8,
		Budget:     exec.WithConflicts(500000),
	}
}

// enumerateCell lists up to limit witnesses of cond subject to nXor random
// parity constraints over the inputs.
func (xs *XorSampler) enumerateCell(nXor, limit int) [][]bool {
	// Preprocessing runs inside prepare, before the parity constraints:
	// the XOR chains land on a reduced base encoding either way, and the
	// per-cell solver stays cheap to set up.
	s, ins := prepare(xs.Ctx, xs.g, xs.cond, xs.Budget, xs.Simp, xs.Trace)
	s.SetRandomPolarity(xs.rng.Int63())
	for x := 0; x < nXor; x++ {
		var lits []sat.Lit
		for _, l := range ins {
			if xs.rng.Intn(2) == 0 {
				lits = append(lits, l)
			}
		}
		cnf.AddXorConstraint(s, lits, xs.rng.Intn(2) == 0)
	}
	var cell [][]bool
	for len(cell) < limit {
		if s.Solve() != sat.Sat {
			break
		}
		w := make([]bool, len(ins))
		block := make([]sat.Lit, len(ins))
		for i, l := range ins {
			w[i] = s.ModelValue(l)
			if w[i] {
				block[i] = l.Not()
			} else {
				block[i] = l
			}
		}
		cell = append(cell, w)
		if !s.AddClause(block...) {
			break
		}
	}
	if xs.Trace.Enabled() {
		xs.Trace.Event("sample.cell",
			obs.Int("xors", int64(nXor)), obs.Int("size", int64(len(cell))))
	}
	return cell
}

// Sample implements Sampler: it searches for a parity-cell size yielding
// small cells, then draws random members from fresh cells.
func (xs *XorSampler) Sample(n int) [][]bool {
	nin := xs.g.NumInputs()
	// Find a cell dimension where cells hold <= 2*CellTarget witnesses.
	nXor := 0
	cell := xs.enumerateCell(0, 2*xs.CellTarget+1)
	if len(cell) == 0 {
		return nil
	}
	for len(cell) > 2*xs.CellTarget && nXor < nin {
		nXor++
		cell = xs.enumerateCell(nXor, 2*xs.CellTarget+1)
	}
	var out [][]bool
	stale := 0
	for len(out) < n && stale < 8 {
		if len(cell) == 0 {
			stale++
		} else {
			stale = 0
			// Draw without replacement from this cell.
			xs.rng.Shuffle(len(cell), func(i, j int) { cell[i], cell[j] = cell[j], cell[i] })
			take := len(cell)
			if take > n-len(out) {
				take = n - len(out)
			}
			out = append(out, cell[:take]...)
		}
		if len(out) < n {
			cell = xs.enumerateCell(nXor, 2*xs.CellTarget+1)
		}
	}
	return out
}

// PoolSampler memoizes whole witness pools in a content-addressed cache.
// Samplers are stateful streams (their RNG advances with every solver
// answer), which makes a partially-replayed stream impossible to cache
// soundly; PoolSampler sidesteps this by building a FRESH single-use
// sampler per pool draw, so a pool is a pure function of (Key, n) and can
// be stored and replayed byte-identically. Repeated Sample calls with the
// same n therefore return the same pool — use one PoolSampler per draw,
// the way the splitting estimator uses its per-stage samplers.
type PoolSampler struct {
	// Cache stores the pools (nil: every draw computes).
	Cache *memo.Cache
	// Key must fully describe the underlying sampler construction: the
	// exact netlist hash (witnesses depend on concrete CNF variable
	// order), condition literal, sampler kind, seed and options.
	Key string
	// New builds the single-use underlying sampler.
	New func() Sampler
}

// Sample implements Sampler. The returned pool is a fresh copy; callers
// may reorder or mutate it.
func (ps *PoolSampler) Sample(n int) [][]bool {
	v, err := memo.Do(ps.Cache, fmt.Sprintf("%s|n=%d", ps.Key, n), func() ([][]bool, error) {
		return ps.New().Sample(n), nil
	})
	if err != nil {
		return ps.New().Sample(n)
	}
	out := make([][]bool, len(v))
	for i, w := range v {
		out[i] = append([]bool(nil), w...)
	}
	return out
}

// ConditionalProbability estimates P(target=1 | cond=1) by sampling
// witnesses of cond and evaluating target on them. It returns the estimate
// and the number of witnesses used (0 when cond appears unsatisfiable).
func ConditionalProbability(g *aig.AIG, target, cond aig.Lit, s Sampler, n int) (float64, int) {
	wit := s.Sample(n)
	if len(wit) == 0 {
		return 0, 0
	}
	probe := g.Copy()
	probe.AddOutput(target, "target")
	hits := 0
	idx := probe.NumOutputs() - 1
	for _, w := range wit {
		if probe.Eval(w)[idx] {
			hits++
		}
	}
	return float64(hits) / float64(len(wit)), len(wit)
}
